package interp

import (
	"testing"
	"testing/quick"

	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/mem"
)

// buildCopyAdd builds: for (i=0;i<n;i++) dst[i] = src[i] + k
func buildCopyAdd(n, k int64) (*ir.Program, *ir.Array, *ir.Array) {
	p := ir.NewProgram("copyadd")
	src := p.Array("src", n)
	dst := p.Array("dst", n)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, i*3)
	}
	r := p.Region("loop")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		sa := b.Add(sb, off)
		da := b.Add(db, off)
		v := b.Load(src, sa, 0)
		v2 := b.AddI(v, k)
		b.Store(dst, da, 0, v2)
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p, src, dst
}

func TestRunCopyAdd(t *testing.T) {
	p, _, dst := buildCopyAdd(10, 7)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		got := int64(res.Mem.LoadW(dst.Base + i*8))
		want := i*3 + 7
		if got != want {
			t.Errorf("dst[%d] = %d, want %d", i, got, want)
		}
	}
	if res.DynOps <= 0 {
		t.Error("no ops counted")
	}
}

func TestRunTripCountsAndBlockCounts(t *testing.T) {
	p, _, _ := buildCopyAdd(10, 1)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	header, body := r.Blocks[1], r.Blocks[2]
	if res.BlockCounts[header] != 11 {
		t.Errorf("header count = %d, want 11", res.BlockCounts[header])
	}
	if res.BlockCounts[body] != 10 {
		t.Errorf("body count = %d, want 10", res.BlockCounts[body])
	}
}

func TestArithmeticSemantics(t *testing.T) {
	// Property: interpreting v = a OP b matches Go semantics.
	f := func(a, b int64) bool {
		p := ir.NewProgram("t")
		out := p.Array("out", 8)
		r := p.Region("r")
		blk := r.NewBlock()
		va := blk.MovI(a)
		vb := blk.MovI(b)
		base := blk.AddrOf(out)
		blk.Store(out, base, 0, blk.Add(va, vb))
		blk.Store(out, base, 8, blk.Sub(va, vb))
		blk.Store(out, base, 16, blk.Mul(va, vb))
		blk.Store(out, base, 24, blk.And(va, vb))
		blk.Store(out, base, 32, blk.Or(va, vb))
		blk.Store(out, base, 40, blk.Xor(va, vb))
		blk.Store(out, base, 48, blk.Div(va, vb))
		blk.Store(out, base, 56, blk.Rem(va, vb))
		blk.ExitRegion()
		r.Seal()
		res, err := Run(p, Options{})
		if err != nil {
			return false
		}
		g := func(i int64) int64 { return int64(res.Mem.LoadW(out.Base + i*8)) }
		wantDiv, wantRem := int64(0), int64(0)
		if b != 0 {
			// Guard against the single INT_MIN / -1 overflow trap.
			if !(a == -1<<63 && b == -1) {
				wantDiv, wantRem = a/b, a%b
			} else {
				wantDiv, wantRem = a/b, a%b
			}
		}
		return g(0) == a+b && g(1) == a-b && g(2) == a*b &&
			g(3) == a&b && g(4) == a|b && g(5) == a^b &&
			g(6) == wantDiv && g(7) == wantRem
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFloatSemantics(t *testing.T) {
	p := ir.NewProgram("f")
	out := p.FloatArray("out", 4)
	r := p.Region("r")
	b := r.NewBlock()
	x := b.MovF(2.5)
	y := b.MovF(4.0)
	base := b.AddrOf(out)
	b.FStore(out, base, 0, b.FAdd(x, y))
	b.FStore(out, base, 8, b.FMul(x, y))
	b.FStore(out, base, 16, b.FDiv(y, x))
	b.FStore(out, base, 24, b.IToF(b.FToI(b.FSub(y, x))))
	b.ExitRegion()
	r.Seal()
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := func(i int64) float64 { return ir.U2F(res.Mem.LoadW(out.Base + i*8)) }
	if g(0) != 6.5 || g(1) != 10.0 || g(2) != 1.6 || g(3) != 1.0 {
		t.Errorf("float results = %g %g %g %g", g(0), g(1), g(2), g(3))
	}
}

func TestComparisonsAndPredicates(t *testing.T) {
	p := ir.NewProgram("c")
	out := p.Array("out", 4)
	r := p.Region("r")
	b := r.NewBlock()
	x := b.MovI(3)
	y := b.MovI(5)
	base := b.AddrOf(out)
	lt := b.CmpLT(x, y)
	gt := b.CmpGT(x, y)
	// Select via branch: out[0] = lt ? 1 : 0 through a diamond.
	then := r.NewBlock()
	els := r.NewBlock()
	join := r.NewBlock()
	one := then.MovI(1)
	then.Store(out, base, 0, one)
	then.JumpTo(join)
	zero := els.MovI(0)
	els.Store(out, base, 0, zero)
	els.JumpTo(join)
	both := join.Region.NewOp(isa.PAND)
	both.Args[0], both.Args[1] = lt, gt
	both.Dst = r.NewValue(isa.RegPR)
	both.Blk = join
	join.Ops = append(join.Ops, both)
	// Store the PAND result (0) via a second diamond collapse: use PNOT.
	notBoth := join.Region.NewOp(isa.PNOT)
	notBoth.Args[0] = both.Dst
	notBoth.Dst = r.NewValue(isa.RegPR)
	notBoth.Blk = join
	join.Ops = append(join.Ops, notBoth)
	join.ExitRegion()
	b.BranchIf(lt, then, els)
	r.Seal()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Mem.LoadW(out.Base)); got != 1 {
		t.Errorf("branch took wrong arm: out[0] = %d, want 1", got)
	}
}

func TestTracerObservesMemory(t *testing.T) {
	p, src, dst := buildCopyAdd(4, 1)
	tr := &recordingTracer{}
	_, err := Run(p, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.loads) != 4 || len(tr.stores) != 4 {
		t.Fatalf("tracer saw %d loads, %d stores; want 4, 4", len(tr.loads), len(tr.stores))
	}
	for i, a := range tr.loads {
		if want := src.Base + int64(i)*8; a != want {
			t.Errorf("load %d at %#x, want %#x", i, a, want)
		}
	}
	for i, a := range tr.stores {
		if want := dst.Base + int64(i)*8; a != want {
			t.Errorf("store %d at %#x, want %#x", i, a, want)
		}
	}
	if tr.regions != 1 {
		t.Errorf("regions entered = %d, want 1", tr.regions)
	}
}

type recordingTracer struct {
	loads, stores []int64
	regions       int
	blocks        int
}

func (t *recordingTracer) EnterRegion(*ir.Region) { t.regions++ }
func (t *recordingTracer) EnterBlock(*ir.Block)   { t.blocks++ }
func (t *recordingTracer) Op(*ir.Op)              {}
func (t *recordingTracer) Mem(_ *ir.Op, addr int64, isStore bool) {
	if isStore {
		t.stores = append(t.stores, addr)
	} else {
		t.loads = append(t.loads, addr)
	}
}

func TestOpBudget(t *testing.T) {
	// An infinite loop must be cut off by MaxOps, not hang.
	p := ir.NewProgram("inf")
	r := p.Region("r")
	b := r.NewBlock()
	b.MovI(1)
	b.JumpTo(b)
	// Need an exit block for Verify; unreachable.
	e := r.NewBlock()
	e.ExitRegion()
	r.Seal()
	_, err := Run(p, Options{MaxOps: 1000})
	if err == nil {
		t.Fatal("expected op-budget error")
	}
}

func TestMemOutOfBoundsPanics(t *testing.T) {
	m := mem.NewFlat(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	m.LoadW(4 * 8)
}

func TestMemUnalignedPanics(t *testing.T) {
	m := mem.NewFlat(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned access")
		}
	}()
	m.LoadW(3)
}

func TestFlatCloneEqualDiff(t *testing.T) {
	a := mem.NewFlat(8)
	a.StoreW(16, 42)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.StoreW(24, 7)
	if a.Equal(b) {
		t.Error("diverged clones compare equal")
	}
	addr, av, bv, ok := a.FirstDiff(b)
	if !ok || addr != 24 || av != 0 || bv != 7 {
		t.Errorf("FirstDiff = %#x %d %d %v", addr, av, bv, ok)
	}
}
