package interp

import (
	"testing"
	"testing/quick"

	"voltron/internal/ir"
	"voltron/internal/isa"
)

// evalOne builds a one-op program computing dst = a OP b and returns dst.
func evalOne(t *testing.T, code isa.Opcode, a, b int64) int64 {
	t.Helper()
	p := ir.NewProgram("one")
	out := p.Array("out", 1)
	r := p.Region("r")
	blk := r.NewBlock()
	va := blk.MovI(a)
	vb := blk.MovI(b)
	o := r.NewOp(code)
	o.Args[0], o.Args[1] = va, vb
	o.Dst = r.NewValue(isa.RegGPR)
	o.Blk = blk
	blk.Ops = append(blk.Ops, o)
	base := blk.AddrOf(out)
	blk.Store(out, base, 0, o.Dst)
	blk.ExitRegion()
	r.Seal()
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return int64(res.Mem.LoadW(out.Base))
}

func TestShiftSemantics(t *testing.T) {
	f := func(x int64, s uint8) bool {
		sh := int64(s & 63)
		return evalOne(t, isa.SHL, x, sh) == x<<uint(sh) &&
			evalOne(t, isa.SHR, x, sh) == x>>uint(sh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestShiftCountMasking(t *testing.T) {
	// Shift counts wrap at 64, matching the machine's semantics.
	if got := evalOne(t, isa.SHL, 1, 65); got != 2 {
		t.Errorf("1 << 65 = %d, want 2 (count masked)", got)
	}
	if got := evalOne(t, isa.SHR, 8, 64); got != 8 {
		t.Errorf("8 >> 64 = %d, want 8 (count masked)", got)
	}
}

func TestArithmeticShiftRightIsSigned(t *testing.T) {
	if got := evalOne(t, isa.SHR, -8, 1); got != -4 {
		t.Errorf("-8 >> 1 = %d, want -4 (arithmetic shift)", got)
	}
}

func TestComparisonOpcodes(t *testing.T) {
	cases := []struct {
		code    isa.Opcode
		a, b    int64
		wantNeg bool // predicate false
	}{
		{isa.CMPEQ, 3, 3, false}, {isa.CMPEQ, 3, 4, true},
		{isa.CMPNE, 3, 4, false}, {isa.CMPNE, 3, 3, true},
		{isa.CMPLE, 3, 3, false}, {isa.CMPLE, 4, 3, true},
		{isa.CMPGE, 3, 3, false}, {isa.CMPGE, 2, 3, true},
		{isa.CMPGT, 4, 3, false}, {isa.CMPGT, 3, 3, true},
	}
	for _, c := range cases {
		p := ir.NewProgram("cmp")
		out := p.Array("out", 1)
		r := p.Region("r")
		blk := r.NewBlock()
		va := blk.MovI(c.a)
		vb := blk.MovI(c.b)
		o := r.NewOp(c.code)
		o.Args[0], o.Args[1] = va, vb
		o.Dst = r.NewValue(isa.RegPR)
		o.Blk = blk
		blk.Ops = append(blk.Ops, o)
		// Materialize the predicate into memory through a branch.
		then := r.NewBlock()
		els := r.NewBlock()
		join := r.NewBlock()
		base := blk.AddrOf(out)
		then.Store(out, base, 0, then.MovI(1))
		then.JumpTo(join)
		els.Store(out, base, 0, els.MovI(0))
		els.JumpTo(join)
		join.ExitRegion()
		blk.BranchIf(o.Dst, then, els)
		r.Seal()
		res, err := Run(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Mem.LoadW(out.Base) == 1
		if got == c.wantNeg {
			t.Errorf("%v(%d,%d) = %v", c.code, c.a, c.b, got)
		}
	}
}

func TestMovAndImmediateForms(t *testing.T) {
	p := ir.NewProgram("mv")
	out := p.Array("out", 2)
	r := p.Region("r")
	b := r.NewBlock()
	x := b.MovI(11)
	mv := r.NewOp(isa.MOV)
	mv.Args[0] = x
	mv.Dst = r.NewValue(isa.RegGPR)
	mv.Blk = b
	b.Ops = append(b.Ops, mv)
	base := b.AddrOf(out)
	b.Store(out, base, 0, mv.Dst)
	b.Store(out, base, 8, b.SubI(x, 4))
	b.ExitRegion()
	r.Seal()
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.LoadW(out.Base) != 11 || int64(res.Mem.LoadW(out.Base+8)) != 7 {
		t.Errorf("mov/subi results: %d %d", res.Mem.LoadW(out.Base), int64(res.Mem.LoadW(out.Base+8)))
	}
}

func TestFToIAndConversionRoundTrip(t *testing.T) {
	f := func(x int32) bool {
		p := ir.NewProgram("cv")
		out := p.Array("out", 1)
		r := p.Region("r")
		b := r.NewBlock()
		v := b.MovI(int64(x))
		fv := b.IToF(v)
		back := b.FToI(fv)
		b.Store(out, b.AddrOf(out), 0, back)
		b.ExitRegion()
		r.Seal()
		res, err := Run(p, Options{})
		if err != nil {
			return false
		}
		return int64(res.Mem.LoadW(out.Base)) == int64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterpRejectsMachineOnlyOpcodes(t *testing.T) {
	p := ir.NewProgram("bad")
	r := p.Region("r")
	b := r.NewBlock()
	o := r.NewOp(isa.SEND)
	o.Blk = b
	b.Ops = append(b.Ops, o)
	b.ExitRegion()
	r.Seal()
	if _, err := Run(p, Options{}); err == nil {
		t.Error("SEND accepted by the interpreter")
	}
}
