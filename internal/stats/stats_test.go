package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has placeholder name %q", k, s)
		}
		if other, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", k, other, s)
		}
		seen[s] = k
	}
}

func TestCoreAccounting(t *testing.T) {
	var c Core
	c.Add(Busy, 10)
	c.Add(DStall, 5)
	c.Add(Busy, 2)
	if c.Cycles[Busy] != 12 || c.Cycles[DStall] != 5 {
		t.Errorf("cycles = %v", c.Cycles)
	}
	if c.Total() != 17 {
		t.Errorf("total = %d, want 17", c.Total())
	}
}

func TestRunStallSums(t *testing.T) {
	r := NewRun(3)
	r.Cores[0].Add(RecvData, 4)
	r.Cores[1].Add(RecvData, 6)
	r.Cores[2].Add(Busy, 100)
	if r.Stall(RecvData) != 10 {
		t.Errorf("Stall(RecvData) = %d, want 10", r.Stall(RecvData))
	}
	if r.Stall(Busy) != 100 {
		t.Errorf("Stall(Busy) = %d", r.Stall(Busy))
	}
}

func TestAvgStallFraction(t *testing.T) {
	r := NewRun(2)
	r.Cores[0].Add(DStall, 50)
	r.Cores[1].Add(DStall, 100)
	got := r.AvgStallFraction(DStall, 100)
	if got != 0.75 {
		t.Errorf("AvgStallFraction = %g, want 0.75", got)
	}
	if r.AvgStallFraction(DStall, 0) != 0 {
		t.Error("zero reference should yield 0")
	}
}

func TestModeFraction(t *testing.T) {
	r := NewRun(1)
	r.TotalCycles = 200
	r.ModeCycles[ModeCoupled] = 50
	r.ModeCycles[ModeDecoupled] = 150
	if r.ModeFraction(ModeCoupled) != 0.25 || r.ModeFraction(ModeDecoupled) != 0.75 {
		t.Errorf("fractions = %g / %g", r.ModeFraction(ModeCoupled), r.ModeFraction(ModeDecoupled))
	}
	empty := NewRun(1)
	if empty.ModeFraction(ModeCoupled) != 0 {
		t.Error("empty run fraction nonzero")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeCoupled.String() != "coupled" || ModeDecoupled.String() != "decoupled" {
		t.Error("mode names wrong")
	}
}

func TestRunStringMentionsNonzeroKinds(t *testing.T) {
	r := NewRun(1)
	r.TotalCycles = 42
	r.Cores[0].Add(RecvPred, 7)
	s := r.String()
	if !strings.Contains(s, "cycles=42") || !strings.Contains(s, "predicate recv=7") {
		t.Errorf("String() = %q", s)
	}
}

func TestFractionPropertiesQuick(t *testing.T) {
	// AvgStallFraction is linear in the charge and inverse in the
	// reference.
	f := func(charge uint16, ref uint16) bool {
		if ref == 0 {
			return true
		}
		r := NewRun(1)
		r.Cores[0].Add(DStall, int64(charge))
		got := r.AvgStallFraction(DStall, int64(ref))
		want := float64(charge) / float64(ref)
		d := got - want
		if d < 0 {
			d = -d
		}
		return d < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
