// Package stats defines the cycle accounting the evaluation figures are
// built from: per-core breakdowns of where time goes (busy, I-cache stalls,
// D-cache stalls, receive stalls split into data and predicate, call/return
// synchronization, lock-step stalls) and per-run mode occupancy.
package stats

import (
	"fmt"
	"strings"
)

// Kind classifies what a core did in one cycle.
type Kind int

// Cycle kinds. The receive-stall split (data vs predicate) and the
// call/return sync category follow the paper's Figure 12.
const (
	Busy Kind = iota
	IStall
	DStall
	RecvData
	RecvPred
	SendStall   // queue-mode back-pressure: the target receive queue is full
	SyncCallRet // waiting at region boundaries / spawn-sleep barriers
	Lockstep    // coupled mode: stalled because another core stalled
	TMRollback  // cycles lost to transaction aborts and re-execution
	Idle        // decoupled: sleeping with no work
	numKinds
)

// NumKinds is the number of cycle kinds — the size of dense per-kind
// accounting arrays kept outside this package (e.g. the tracer's per-region
// attribution counters).
const NumKinds = int(numKinds)

// Kinds lists all kinds in display order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// String names the kind as in the paper's stall-breakdown figure.
func (k Kind) String() string {
	switch k {
	case Busy:
		return "busy"
	case IStall:
		return "I-stalls"
	case DStall:
		return "D-stalls"
	case RecvData:
		return "recv stall"
	case RecvPred:
		return "predicate recv"
	case SendStall:
		return "send stall"
	case SyncCallRet:
		return "call return sync"
	case Lockstep:
		return "lockstep stall"
	case TMRollback:
		return "tm rollback"
	case Idle:
		return "idle"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Core accumulates one core's cycle breakdown.
type Core struct {
	Cycles [numKinds]int64
}

// Add charges n cycles of kind k.
func (c *Core) Add(k Kind, n int64) { c.Cycles[k] += n }

// Total returns the core's accounted cycles.
func (c *Core) Total() int64 {
	var t int64
	for _, n := range c.Cycles {
		t += n
	}
	return t
}

// Mode identifies an execution mode for occupancy accounting.
type Mode int

// Execution modes.
const (
	ModeCoupled Mode = iota
	ModeDecoupled
	numModes
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeCoupled {
		return "coupled"
	}
	return "decoupled"
}

// Run aggregates a whole simulation.
type Run struct {
	Cores []Core
	// TotalCycles is the wall-clock cycle count of the run.
	TotalCycles int64
	// ModeCycles is wall-clock time spent in each mode.
	ModeCycles [numModes]int64
	// TMConflicts counts transactional violations.
	TMConflicts int64
	// Spawns counts fine-grain thread launches.
	Spawns int64
}

// NewRun allocates accounting for n cores.
func NewRun(n int) *Run { return &Run{Cores: make([]Core, n)} }

// Stall returns the summed stall cycles (everything but Busy and Idle)
// across cores.
func (r *Run) Stall(k Kind) int64 {
	var t int64
	for i := range r.Cores {
		t += r.Cores[i].Cycles[k]
	}
	return t
}

// AvgStallFraction returns the average across cores of kind k's share of
// the run, normalized to a reference cycle count (the paper normalizes to
// serial execution time).
func (r *Run) AvgStallFraction(k Kind, ref int64) float64 {
	if ref == 0 || len(r.Cores) == 0 {
		return 0
	}
	var sum float64
	for i := range r.Cores {
		sum += float64(r.Cores[i].Cycles[k]) / float64(ref)
	}
	return sum / float64(len(r.Cores))
}

// ModeFraction returns the share of wall-clock time spent in mode m.
func (r *Run) ModeFraction(m Mode) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.ModeCycles[m]) / float64(r.TotalCycles)
}

// String summarizes the run for logs.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d", r.TotalCycles)
	for _, k := range Kinds() {
		if s := r.Stall(k); s > 0 {
			fmt.Fprintf(&b, " %s=%d", k, s)
		}
	}
	return b.String()
}
