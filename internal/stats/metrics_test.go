package stats

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(-500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.us); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99US != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot not empty: %+v", s)
	}
	// 99 fast observations and one slow one: P50/P90 land in the fast
	// bucket, P99 still in the fast bucket (rank 99 of 100), max is slow.
	for i := 0; i < 99; i++ {
		h.Observe(3 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MinUS != 3 || s.MaxUS != 10000 {
		t.Errorf("min/max = %d/%d, want 3/10000", s.MinUS, s.MaxUS)
	}
	if s.P50US != 4 || s.P90US != 4 || s.P99US != 4 {
		t.Errorf("quantile bounds = %d/%d/%d, want 4/4/4", s.P50US, s.P90US, s.P99US)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("buckets = %+v, want 2 non-empty", s.Buckets)
	}
	wantMean := (99*3 + 10000) / 100.0
	if s.MeanUS != wantMean {
		t.Errorf("mean = %f, want %f", s.MeanUS, wantMean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.Observe(time.Duration(i*j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8*200 {
		t.Errorf("count = %d, want %d", got, 8*200)
	}
}
