package stats

// Serving-side metrics: the cycle accounting above describes the simulated
// machine; Counter and Histogram describe the host-side service that runs
// it (voltron-serve). Both are safe for concurrent use.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe accumulator. Deltas may be negative, so a
// Counter can also track a level (e.g. current queue depth) via paired
// Add(1)/Add(-1) calls.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which may be negative).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations with ceil(log2(µs)) == i, so the histogram spans
// 1 µs .. ~2^47 µs (years) with constant memory.
const histBuckets = 48

// Histogram is a concurrency-safe latency histogram with power-of-two
// microsecond buckets — coarse, constant-memory, and cheap to observe
// into, which is what a per-request metrics path wants.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	count  int64
	sumUS  int64
	minUS  int64
	maxUS  int64
}

// bucketOf maps a microsecond latency to its bucket index.
func bucketOf(us int64) int {
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us) - 1) // ceil(log2)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.mu.Lock()
	h.counts[bucketOf(us)]++
	if h.count == 0 || us < h.minUS {
		h.minUS = us
	}
	if us > h.maxUS {
		h.maxUS = us
	}
	h.count++
	h.sumUS += us
	h.mu.Unlock()
}

// HistBucket is one non-empty histogram bucket: Count observations were
// ≤ LeUS microseconds (and above the previous bucket's bound).
type HistBucket struct {
	LeUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped for
// JSON (the /metrics endpoint serves these directly).
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	MeanUS  float64      `json:"mean_us"`
	MinUS   int64        `json:"min_us"`
	MaxUS   int64        `json:"max_us"`
	P50US   int64        `json:"p50_us"`
	P90US   int64        `json:"p90_us"`
	P99US   int64        `json:"p99_us"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the histogram. Quantiles are
// upper-bound estimates: the bound of the bucket containing the quantile.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := h.counts
	s := HistogramSnapshot{Count: h.count, MinUS: h.minUS, MaxUS: h.maxUS}
	if h.count > 0 {
		s.MeanUS = float64(h.sumUS) / float64(h.count)
	}
	h.mu.Unlock()
	for i, n := range counts {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeUS: bucketBound(i), Count: n})
		}
	}
	s.P50US = quantileBound(counts[:], s.Count, 0.50)
	s.P90US = quantileBound(counts[:], s.Count, 0.90)
	s.P99US = quantileBound(counts[:], s.Count, 0.99)
	return s
}

// bucketBound is the inclusive upper bound (µs) of bucket i.
func bucketBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << i
}

// quantileBound returns the upper bound of the bucket holding quantile q.
func quantileBound(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range counts {
		seen += n
		if seen >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(len(counts) - 1)
}
